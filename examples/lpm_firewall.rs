//! LPM firewall: flat match tables through the sharded runtime.
//!
//! Compiles a firewall module whose `routes` table is declared `match = lpm`
//! (longest-prefix match on the destination IP) and whose `acl` table is
//! `match = range` (priority intervals over the UDP destination port), loads
//! it onto a sharded runtime, and installs rules *incrementally* over the
//! control log — including a live install published while the data path
//! keeps forwarding, the non-quiescing path the million-rule tables exist
//! for. Finishes with the bytes-per-entry breakdown of each layout.
//!
//! Run with `cargo run --example lpm_firewall`.

use menshen::prelude::*;
use menshen_cost::MatchMemoryModel;
use menshen_runtime::{RuntimeOptions, ShardedRuntime};

const FIREWALL: &str = r#"
module firewall {
    parser {
        extract ethernet;
        extract vlan;
        extract ipv4;
        extract udp;
    }
    table routes {
        key = { ipv4.dst_addr; }
        match = lpm;
        actions = { to_core; to_edge; to_peering; }
    }
    table acl {
        key = { udp.dst_port; }
        match = range;
        actions = { block; }
        size = 4096;
    }
    action to_core() { set_port(1); }
    action to_edge() { set_port(2); }
    action to_peering() { set_port(3); }
    action block() { mark_drop(); }
    apply {
        routes.apply();
        acl.apply();
    }
}
"#;

fn main() {
    // Compile for module ID (VLAN) 7. `routes` gets the default flat-table
    // capacity (2^20 prefixes); `acl` is bounded by its declared size.
    let compiled = compile_source(FIREWALL, &CompileOptions::new(7)).expect("firewall compiles");
    let module = ModuleId::new(7);
    let routes_stage = compiled.table("routes").unwrap().stage;
    let acl_stage = compiled.table("acl").unwrap().stage;

    // Stand the module up on a sharded runtime: every shard gets its own
    // replica of both flat tables.
    let mut runtime = ShardedRuntime::new(TABLE5, RuntimeOptions::deterministic(4));
    runtime.load_module(&compiled.config).expect("module loads");

    // Install the routing table: overlapping prefixes, longest wins.
    let routes = [
        (0x0a00_0000u32, 8u8, "to_edge"), // 10.0.0.0/8
        (0x0a01_0000, 16, "to_core"),     // 10.1.0.0/16
        (0xc0a8_0000, 16, "to_peering"),  // 192.168.0.0/16
    ];
    let rules: Vec<_> = routes
        .iter()
        .map(|&(prefix, len, action)| compiled.lpm_rule("routes", prefix, len, action).unwrap())
        .collect();
    runtime
        .install_rules(module, routes_stage, &rules)
        .expect("routes install");

    // Block the low UDP ports with one priority interval.
    let acl = compiled.range_rule("acl", 0, 1023, 10, "block").unwrap();
    runtime
        .install_rules(module, acl_stage, &[acl])
        .expect("acl install");

    let send = |runtime: &mut ShardedRuntime, dst: [u8; 4], dport: u16| {
        let packet = PacketBuilder::new().with_vlan(7).build_udp(
            [172, 16, 0, 1],
            dst,
            5555,
            dport,
            b"lpm firewall",
        );
        let verdict = runtime.process_batch(vec![packet]).unwrap().remove(0);
        let dst = format!("{}.{}.{}.{}", dst[0], dst[1], dst[2], dst[3]);
        match verdict {
            Verdict::Forwarded { ports, .. } => {
                println!("{dst:>15}:{dport:<5} -> forwarded out port(s) {ports:?}")
            }
            Verdict::Dropped { reason, .. } => {
                println!("{dst:>15}:{dport:<5} -> dropped ({reason:?})")
            }
        }
    };

    println!("--- initial rules ---");
    send(&mut runtime, [10, 0, 0, 5], 8080); // /8        -> to_edge
    send(&mut runtime, [10, 1, 2, 3], 8080); // /16 wins  -> to_core
    send(&mut runtime, [192, 168, 9, 9], 8080); // peering
    send(&mut runtime, [10, 0, 0, 5], 53); // low port    -> blocked
    send(&mut runtime, [8, 8, 8, 8], 8080); // no route   -> passes through

    // A live install: publish a more specific /24 without flushing or
    // quiescing — traffic keeps flowing while the epoch propagates.
    let patch = compiled
        .lpm_rule("routes", 0x0a01_0200, 24, "to_peering") // 10.1.2.0/24
        .unwrap();
    let epoch = runtime.install_rules_async(module, routes_stage, &[patch]);
    runtime.wait_for_epoch(epoch).expect("shards apply");
    assert!(runtime.epoch_error(epoch).is_none());

    println!("--- after live /24 install ---");
    send(&mut runtime, [10, 1, 2, 3], 8080); // /24 now wins -> to_peering
    send(&mut runtime, [10, 1, 9, 9], 8080); // /16 still    -> to_core

    // Price the layouts: the standby replica (reconstructed from the same
    // control log the shards applied) exposes both tables.
    let standby = runtime.standby_replica();
    let lpm = MatchMemoryModel::lpm(standby.lpm_table(module, routes_stage).unwrap());
    let range = MatchMemoryModel::range(standby.range_table(module, acl_stage).unwrap());
    let cam = MatchMemoryModel::cam(lpm.entries + range.entries);
    println!("--- memory model (bytes/entry) ---");
    for row in [cam, lpm, range] {
        println!(
            "{:>6}: {:>4} entries, {:>6} data-path B, {:>5} control B, {:>8.1} B/entry",
            row.kind,
            row.entries,
            row.data_path_bytes,
            row.control_bytes,
            row.bytes_per_entry()
        );
    }
}
