//! Quickstart: compile one module from DSL source, load it onto the Menshen
//! pipeline, and push a few packets through it.
//!
//! Run with `cargo run --example quickstart`.

use menshen::prelude::*;
use menshen_compiler::FieldRef;

fn main() {
    // A tiny tenant module: route packets by destination IP and drop one
    // blocked destination.
    let source = r#"
module quickstart {
    parser {
        extract ethernet;
        extract vlan;
        extract ipv4;
        extract udp;
    }
    table route {
        key = { ipv4.dst_addr; }
        actions = { to_port_2; to_port_3; drop_it; }
        size = 16;
    }
    action to_port_2() { set_port(2); }
    action to_port_3() { set_port(3); }
    action drop_it() { mark_drop(); }
    apply {
        route.apply();
    }
}
"#;

    // Compile for module ID (VLAN) 7.
    let compiled = compile_source(source, &CompileOptions::new(7)).expect("module compiles");
    println!(
        "compiled `{}`: {} parser actions, table in stage {}",
        compiled.config.name,
        compiled.config.parser.actions.len(),
        compiled.table("route").unwrap().stage,
    );

    // Install three concrete routes.
    let dst = FieldRef::new("ipv4", "dst_addr");
    let mut config = compiled.config.clone();
    let stage = compiled.table("route").unwrap().stage;
    for (ip, action) in [
        (u32::from_be_bytes([10, 0, 0, 2]), "to_port_2"),
        (u32::from_be_bytes([10, 0, 0, 3]), "to_port_3"),
        (u32::from_be_bytes([10, 0, 0, 66]), "drop_it"),
    ] {
        config.stages[stage].rules.push(
            compiled
                .rule("route", &[(&dst, u64::from(ip))], action)
                .unwrap(),
        );
    }

    // Load it onto a pipeline with the paper's Table 5 parameters.
    let mut pipeline = MenshenPipeline::new(TABLE5);
    let report = pipeline.load_module(&config).expect("module loads");
    println!(
        "loaded into slot {} using {} reconfiguration packets over the daisy chain",
        report.slot, report.reconfig_packets
    );

    // Send traffic.
    for last_octet in [2u8, 3, 66, 99] {
        let packet = PacketBuilder::new().with_vlan(7).build_udp(
            [192, 168, 0, 1],
            [10, 0, 0, last_octet],
            5555,
            80,
            b"hello menshen",
        );
        match pipeline.process(packet) {
            Verdict::Forwarded { ports, .. } => {
                println!("packet to 10.0.0.{last_octet:<3} -> forwarded out port(s) {ports:?}")
            }
            Verdict::Dropped { reason, .. } => {
                println!("packet to 10.0.0.{last_octet:<3} -> dropped ({reason:?})")
            }
        }
    }

    // Per-module statistics maintained by the hardware.
    let counters = pipeline.module_counters(ModuleId::new(7)).unwrap();
    println!(
        "module 7 counters: {} in / {} out / {} dropped",
        counters.packets_in, counters.packets_out, counters.packets_dropped
    );
}
