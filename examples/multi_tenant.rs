//! Multi-tenant isolation: the §5.1 behaviour-isolation spot check.
//!
//! Loads CALC, Firewall and NetCache side by side on one pipeline (as in the
//! paper), sends each tenant's workload interleaved with the others', and
//! verifies with each program's oracle that every tenant behaves exactly as
//! it would running alone.
//!
//! Run with `cargo run --example multi_tenant`.

use menshen::prelude::*;
use menshen_programs::{calc::Calc, firewall::Firewall, netcache::NetCache};

fn main() {
    let mut pipeline = MenshenPipeline::new(TABLE5);

    // Tenant programs and their module IDs (VLANs).
    let tenants: Vec<(u16, Box<dyn EvaluatedProgram>)> = vec![
        (10, Box::new(Calc)),
        (11, Box::new(Firewall)),
        (12, Box::new(NetCache::new())),
    ];

    for (module_id, program) in &tenants {
        program.configure_system(pipeline.system_mut());
        let config = program.build(*module_id).expect("tenant compiles");
        let report = pipeline.load_module(&config).expect("tenant loads");
        println!(
            "loaded {:<10} as module {:>2} (slot {}, {} daisy-chain writes)",
            program.name(),
            module_id,
            report.slot,
            report.reconfig_packets
        );
    }

    // Interleave the three tenants' workloads packet by packet.
    let workloads: Vec<Vec<Packet>> = tenants
        .iter()
        .map(|(module_id, program)| program.packets(*module_id, 50, 2024))
        .collect();

    let mut checked = 0usize;
    let mut violations = 0usize;
    #[allow(clippy::needless_range_loop)]
    for round in 0..50 {
        for (tenant_index, (_, program)) in tenants.iter().enumerate() {
            let packet = workloads[tenant_index][round].clone();
            let verdict = pipeline.process(packet.clone());
            checked += 1;
            if !program.check_output(&packet, &verdict) {
                violations += 1;
                eprintln!("ISOLATION VIOLATION for {}", program.name());
            }
        }
    }

    println!();
    println!("checked {checked} packets across 3 concurrent tenants: {violations} violations");
    for (module_id, program) in &tenants {
        let counters = pipeline.module_counters(ModuleId::new(*module_id)).unwrap();
        println!(
            "  {:<10} in={:<4} out={:<4} dropped={:<4}",
            program.name(),
            counters.packets_in,
            counters.packets_out,
            counters.packets_dropped
        );
    }
    if violations == 0 {
        println!("behaviour isolation holds: every tenant behaved as if it were alone.");
    }
}
