//! The observability plane, end to end: replay a heavy-tailed two-tenant
//! trace through the sharded runtime, resize it live, and export everything
//! the plane collected —
//!
//! * `results/metrics.prom` — the Prometheus text exposition of the full
//!   metrics snapshot (shard counters, per-tenant SLO series, sojourn
//!   histograms, control-plane gauges);
//! * `results/trace.json` — the control-plane event trace as Chrome
//!   trace-event JSON (open it at `chrome://tracing` or in Perfetto).
//!
//! Run with `cargo run --example observability` (add
//! `--features profiling` to see the sampled per-stage timings too).

use menshen::core::MenshenPipeline;
use menshen::runtime::{RuntimeOptions, ShardedRuntime};
use menshen::trace::replay::{replay_sharded, Pacing};
use menshen::trace::synth::{synthesize, WorkloadSpec};
use menshen_bench::workloads::flow_rule_tenant;

const RULES: usize = 128;
const PACKETS: usize = 8_192;

fn main() {
    let params = menshen::rmt::TABLE5.with_table_depth(1024);
    let mut template = MenshenPipeline::new(params);
    for module_id in 1..=2 {
        template
            .load_module(&flow_rule_tenant(module_id, RULES))
            .unwrap();
    }
    let mut spec = WorkloadSpec::heavy_tailed(2, 400, PACKETS);
    spec.rules_per_tenant = RULES;
    spec.mean_rate_pps = 20_000_000.0;
    let trace = synthesize(&spec).expect("workload spec is valid");

    let mut runtime = ShardedRuntime::from_pipeline(&template, RuntimeOptions::threaded(2));
    println!("replaying {} heavy-tailed packets over 2 shards…", PACKETS);
    let first = replay_sharded(&mut runtime, &trace, Pacing::Unpaced).unwrap();
    let resize = runtime.resize(4).expect("scale-out succeeds");
    println!(
        "resized 2 → 4 shards: {:.1} µs pause, {} modules / {} state words migrated",
        resize.pause.as_secs_f64() * 1e6,
        resize.migrated_modules,
        resize.migrated_words
    );
    let second = replay_sharded(&mut runtime, &trace, Pacing::Unpaced).unwrap();

    println!();
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10}",
        "tenant", "forwarded", "dropped", "p50 ns", "p99 ns"
    );
    for report in [&first, &second] {
        for (tenant, view) in &report.tenants {
            let pct = view.sojourn_ns.percentiles();
            println!(
                "{:>8} {:>10} {:>10} {:>10} {:>10}",
                tenant,
                view.ledger.forwarded,
                view.ledger.dropped(),
                pct.p50_ns,
                pct.p99_ns
            );
        }
        println!();
    }

    let audit = runtime.conservation_audit().unwrap();
    println!(
        "conservation audit: submitted={} forwarded={} dropped={} in_flight={} balanced={}",
        audit.submitted,
        audit.forwarded,
        audit.dropped,
        audit.in_flight,
        audit.is_balanced()
    );
    assert!(audit.is_balanced(), "audit must balance: {audit:?}");

    std::fs::create_dir_all("results").unwrap();
    let snapshot = runtime.metrics_snapshot().unwrap();
    let exposition = snapshot.to_prometheus();
    let series = menshen::core::validate_prometheus(&exposition).expect("exposition must be valid");
    std::fs::write("results/metrics.prom", &exposition).unwrap();
    println!("\nwrote results/metrics.prom ({series} series)");

    let chrome = runtime.export_chrome_trace();
    std::fs::write("results/trace.json", chrome.pretty()).unwrap();
    println!(
        "wrote results/trace.json ({} control-plane events; open in chrome://tracing)",
        runtime.control_events().len()
    );

    let profile = runtime.aggregated_profile().unwrap();
    if profile.sampled > 0 {
        println!("\nsampled hot-path profile ({} packets):", profile.sampled);
        for (stage, hist) in menshen::core::PROFILE_PHASES.iter().zip(&profile.phase_ns) {
            let pct = hist.percentiles();
            println!(
                "  {stage:<8} p50 {:>6} ns  p99 {:>6} ns",
                pct.p50_ns, pct.p99_ns
            );
        }
    } else {
        println!("\n(build with --features profiling to sample per-stage timings)");
    }
}
