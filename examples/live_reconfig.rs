//! Disruption-free reconfiguration: the Figure 10 experiment.
//!
//! Three CALC tenants share a 10 Gbit/s link at a 5:3:2 split; module 1 is
//! reconfigured half a second into the run. The other tenants' throughput is
//! unaffected — unlike a Tofino-style full-pipeline reset, which would
//! disturb every tenant for ~50 ms.
//!
//! Run with `cargo run --example live_reconfig`.

use menshen_testbed::ReconfigExperiment;

fn main() {
    let experiment = ReconfigExperiment::default();
    println!(
        "offered load {:.1} Gbit/s split 5:3:2 across modules 1..3; reconfiguring module 1 at t = {:.1} s",
        experiment.offered_gbps, experiment.reconfigure_at_s
    );

    let timeline = experiment.run();
    println!(
        "reconfiguration window: {:.3} s .. {:.3} s ({:.1} ms)",
        timeline.reconfig_start_s,
        timeline.reconfig_end_s,
        (timeline.reconfig_end_s - timeline.reconfig_start_s) * 1e3
    );
    println!();

    // A small ASCII version of Figure 10: one row per 0.25 s, one column per module.
    println!(
        "{:>8}  {:>10} {:>10} {:>10}",
        "t (s)", "module 1", "module 2", "module 3"
    );
    for (index, point) in timeline.series(1).iter().enumerate() {
        if index % 5 != 0 {
            continue;
        }
        let at = |module: u16| timeline.series(module)[index].1;
        println!(
            "{:>8.2}  {:>10.2} {:>10.2} {:>10.2}",
            point.0,
            at(1),
            at(2),
            at(3)
        );
    }

    println!();
    println!(
        "module 2 minimum throughput: {:.2} Gbit/s (offered {:.2})",
        timeline.min_throughput(2),
        9.3 * 0.3
    );
    println!(
        "module 3 minimum throughput: {:.2} Gbit/s (offered {:.2})",
        timeline.min_throughput(3),
        9.3 * 0.2
    );
    println!(
        "module 1 minimum throughput: {:.2} Gbit/s (drops only during its own update)",
        timeline.min_throughput(1)
    );
}
