//! The network-attached service, end to end in one process: stand a
//! [`menshen::io::Service`] up behind real UDP sockets on loopback, drive
//! it with the heavy-tailed socket load generator, reconfigure it live
//! over the control socket, and export the combined runtime + I/O metrics
//! of the live run —
//!
//! * `results/metrics.prom` — the Prometheus text exposition, including
//!   the `menshen_io_*` link counters of the socket data plane.
//!
//! Run with `cargo run --release --example serve`. For the true
//! two-process version of this testbed, see `menshen-serve` /
//! `menshen-loadgen` in `crates/bench` and the README's
//! "running as a network service" section.

use menshen::io::{control_request, Service, ServiceConfig, UdpSocketIo};
use menshen::testbed::{passthrough_template, run_loadgen, LoadgenConfig};
use std::net::{IpAddr, Ipv4Addr};
use std::time::Duration;

const QUEUES: usize = 2;
const PACKETS: usize = 20_000;

fn main() {
    let backend =
        UdpSocketIo::bind(IpAddr::V4(Ipv4Addr::LOCALHOST), QUEUES).expect("bind data plane");
    let targets = backend.local_addrs();
    let template = passthrough_template(4);
    let config = ServiceConfig {
        shards: 2,
        dispatchers: QUEUES,
        ..ServiceConfig::default()
    };
    let mut service = Service::new(&template, Box::new(backend), config).expect("stand up");
    let control = service.control_addr().expect("control listener");
    println!("service up: data {targets:?}, control {control}");

    // The generator runs beside the serve loop and, once every echo is
    // back, reconfigures the live service and asks it to drain.
    let generator = std::thread::spawn(move || {
        let summary = run_loadgen(&LoadgenConfig {
            targets,
            packets: PACKETS,
            rate_pps: 50_000.0,
            ..LoadgenConfig::default()
        })
        .expect("load generator");
        let t = Duration::from_secs(10);
        let resize = control_request(control, "RESIZE 4", t).expect("live resize");
        let drain = control_request(control, "DRAIN", t).expect("drain request");
        (summary, resize, drain)
    });

    service
        .serve(Some(Duration::from_secs(60)))
        .expect("serve loop");

    // Snapshot the *live* run — rx/tx counters of the socket edge included —
    // before the drain tears the runtime down.
    let snapshot = service.metrics_snapshot().expect("metrics snapshot");
    let exposition = snapshot.to_prometheus();
    let series = exposition.lines().filter(|l| !l.starts_with('#')).count();
    std::fs::create_dir_all("results").unwrap();
    std::fs::write("results/metrics.prom", &exposition).unwrap();
    println!("wrote results/metrics.prom ({series} series)");

    let (summary, resize, drain) = generator.join().expect("generator thread");
    assert_eq!(drain, "ok draining");
    let report = service.graceful_drain().expect("graceful drain");

    println!(
        "sent {} pkts at {:.1} kpps; rtt p50 {:.0} us, p99 {:.0} us; live {resize:?}",
        summary.sent,
        summary.achieved_pps / 1e3,
        summary.rtt_p50_ns as f64 / 1e3,
        summary.rtt_p99_ns as f64 / 1e3,
    );
    println!(
        "drain: balanced={} submitted={} forwarded={} dropped={} echoes={}",
        report.balanced,
        report.audit.submitted,
        report.audit.forwarded,
        report.audit.dropped,
        summary.echoes
    );
    assert!(
        summary.lossless() && report.balanced,
        "loopback run lost packets"
    );
}
